//! Decision procedures for the definability hierarchy of Section 3.
//!
//! Both procedures follow the same closure-based recipe: *reduce* the EDTD
//! (keep only specialised names that are productive and reachable through
//! realizable content words), build the **candidate** schema of the lemma —
//! the least DTD (Lemma 3.12) or single-type SDTD (Lemma 3.5) whose language
//! contains the target — and decide language equivalence of the candidate
//! against the original with the tree-automata machinery. Because the
//! candidate is the closure of the target language under the respective
//! guided subtree-exchange property, the language is definable in the lower
//! class **iff** the candidate is equivalent to it:
//!
//! * [`dtd_candidate`] merges, per element name `a`, the content models of
//!   every reduced specialisation `ã` with `µ(ã) = a` and erases `µ` — the
//!   closure under *label-guided* subtree exchange;
//! * [`sdtd_candidate`] discovers, top-down from the start, the
//!   specialisation *sets* reachable along each ancestor path and takes
//!   them as single-type specialised names — the closure under
//!   *ancestor-guided* subtree exchange (the characterisation of
//!   single-type grammars by Martens, Neven, Schwentick and Bex that
//!   Lemma 3.5 builds on).
//!
//! The differential test suite (`tests/definability_props.rs`) pins both
//! procedures against brute-force closure-violation search on enumerated
//! small-tree universes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dxml_automata::{Nfa, RFormalism, RSpec, Symbol};
use dxml_schema::{RDtd, REdtd, RSdtd};
use dxml_tree::uta;

/// A reduced view of an EDTD: only specialised names that are productive
/// (some finite tree satisfies them) *and* reachable from the start through
/// realizable content words, with content automata restricted accordingly.
struct Reduced {
    start: Symbol,
    root_label: Symbol,
    /// Kept specialised name → (its label `µ(ã)`, reduced content NFA).
    rules: BTreeMap<Symbol, (Symbol, Nfa)>,
}

/// Reduces `e`; `None` iff the language is empty (then no specialised name
/// can type the root, and both candidates degenerate to the empty schema).
fn reduce(e: &REdtd) -> Option<Reduced> {
    let productive: BTreeSet<Symbol> =
        e.to_nuta().inhabited_witnesses().keys().copied().collect();
    if !productive.contains(e.start()) {
        return None;
    }
    let root_label = *e.label_of(e.start()).unwrap_or(e.start());
    let mut rules: BTreeMap<Symbol, (Symbol, Nfa)> = BTreeMap::new();
    let mut queue: VecDeque<Symbol> = VecDeque::from([*e.start()]);
    while let Some(name) = queue.pop_front() {
        if rules.contains_key(&name) {
            continue;
        }
        // Restricting to productive letters and trimming leaves exactly the
        // letters that occur in some realizable content word, so the
        // alphabet of the reduced content is the set of reachable children.
        let content = e
            .content(&name)
            .to_nfa()
            .filter_symbols(|s| productive.contains(s))
            .trim();
        for child in content.alphabet().iter() {
            queue.push_back(*child);
        }
        let label = *e.label_of(&name).unwrap_or(&name);
        rules.insert(name, (label, content));
    }
    Some(Reduced { start: *e.start(), root_label, rules })
}

/// The trivial empty-language DTD over `root_label` (no tree validates:
/// the root's children can match no word of the empty content model).
fn empty_dtd(root_label: Symbol) -> RDtd {
    let mut dtd = RDtd::new(RFormalism::Nfa, root_label);
    dtd.set_rule(root_label, RSpec::Nfa(Nfa::empty()));
    dtd
}

/// The candidate DTD of Lemma 3.12: per element name `a`, the union over
/// every kept specialisation `ã` with `µ(ã) = a` of its reduced content
/// model, with `µ` erased. Its language always *contains* the language of
/// `e`; it equals it exactly when the language is DTD-definable.
pub fn dtd_candidate(e: &REdtd) -> RDtd {
    let root_label = *e.label_of(e.start()).unwrap_or(e.start());
    let reduced = match reduce(e) {
        Some(r) => r,
        None => return empty_dtd(root_label),
    };
    // Group the kept specialisations by label.
    let mut by_label: BTreeMap<Symbol, Vec<&Nfa>> = BTreeMap::new();
    for (label, content) in reduced.rules.values() {
        by_label.entry(*label).or_default().push(content);
    }
    let mu: BTreeMap<Symbol, Symbol> =
        reduced.rules.iter().map(|(name, (label, _))| (*name, *label)).collect();
    let mut dtd = RDtd::new(RFormalism::Nfa, reduced.root_label);
    for (label, contents) in by_label {
        let union = Nfa::union_all(contents.iter().copied());
        let mapped = union.map_symbols(|s| mu[s]).trim();
        dtd.set_rule(label, RSpec::Nfa(mapped));
    }
    dtd
}

/// Decides DTD-definability (Lemma 3.12): returns an [`RDtd`] with the same
/// language as `e` iff one exists. The witness is [`dtd_candidate`] — the
/// closure of the language under label-guided subtree exchange — so the
/// language is definable exactly when the candidate did not grow.
pub fn dtd_definable(e: &REdtd) -> Option<RDtd> {
    let candidate = dtd_candidate(e);
    uta::is_equivalent(&candidate.to_nuta(), &e.to_nuta()).then_some(candidate)
}

/// The candidate SDTD of Lemma 3.5: specialised names are the pairs
/// `(a, S)` of an element name and the *set* `S` of reduced specialisations
/// the original EDTD allows for an `a`-node with a given ancestor path —
/// discovered top-down from `(root, {start})`. Within one content model
/// every occurrence of a label is renamed to the same `(label, set)` pair,
/// so the result is single-type by construction; its language always
/// contains the language of `e` and equals it exactly when the language is
/// SDTD-definable.
///
/// # Panics
///
/// Only on a broken internal invariant (the construction producing a
/// candidate that is not single-type).
pub fn sdtd_candidate(e: &REdtd) -> RSdtd {
    let root_label = *e.label_of(e.start()).unwrap_or(e.start());
    let reduced = match reduce(e) {
        Some(r) => r,
        None => {
            return RSdtd::from_edtd(empty_dtd(root_label).to_edtd())
                .expect("a single-rule DTD is single-type");
        }
    };
    // Interned (label, specialisation set) pairs: the single-type names.
    let mut names: BTreeMap<(Symbol, BTreeSet<Symbol>), Symbol> = BTreeMap::new();
    let mut counters: BTreeMap<Symbol, usize> = BTreeMap::new();
    let mut queue: VecDeque<(Symbol, BTreeSet<Symbol>)> = VecDeque::new();
    let start_type = (reduced.root_label, BTreeSet::from([reduced.start]));
    let start_name = reduced.root_label.specialize(0);
    names.insert(start_type.clone(), start_name);
    counters.insert(reduced.root_label, 1);
    queue.push_back(start_type);
    let mut out = REdtd::new(RFormalism::Nfa, start_name, root_label);
    out.add_specialization(start_name, root_label);
    while let Some(ty) = queue.pop_front() {
        let union = Nfa::union_all(ty.1.iter().map(|q| &reduced.rules[q].1));
        // Group the letters of the merged content by label: all
        // specialisations of `b` occurring here collapse into the one pair
        // `(b, S_b)` — which is what makes the candidate single-type.
        let mut child_sets: BTreeMap<Symbol, BTreeSet<Symbol>> = BTreeMap::new();
        for s in union.alphabet().iter() {
            child_sets.entry(reduced.rules[s].0).or_default().insert(*s);
        }
        let mut rename: BTreeMap<Symbol, Symbol> = BTreeMap::new();
        for (label, child_set) in child_sets {
            let child_type = (label, child_set.clone());
            let name = *names.entry(child_type.clone()).or_insert_with(|| {
                let i = counters.entry(label).or_insert(0);
                let name = label.specialize(*i);
                *i += 1;
                queue.push_back(child_type);
                name
            });
            out.add_specialization(name, label);
            for s in child_set {
                rename.insert(s, name);
            }
        }
        let content = union.map_symbols(|s| rename[s]).trim();
        out.set_rule(names[&ty], RSpec::Nfa(content));
    }
    RSdtd::from_edtd(out).expect("one name per label in each content model")
}

/// Decides SDTD-definability (Lemma 3.5): returns an [`RSdtd`] with the
/// same language as `e` iff one exists. The witness is [`sdtd_candidate`]
/// — the closure of the language under ancestor-guided subtree exchange —
/// so the language is definable exactly when the candidate did not grow.
pub fn sdtd_definable(e: &REdtd) -> Option<RSdtd> {
    let candidate = sdtd_candidate(e);
    uta::is_equivalent(&candidate.to_nuta(), &e.to_nuta()).then_some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::Regex;
    use dxml_tree::term::parse_term;

    /// The classic non-DTD-definable witness `s(a(b)* a(c) a(b)*)`.
    fn one_c_edtd() -> REdtd {
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("ab", "a");
        e.add_specialization("ac", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
        e.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
        e.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
        e
    }

    /// Depth-specialised but single-type: `s(a(a(b)?))` with the inner `a`
    /// forced to contain `b`.
    fn depth_edtd() -> REdtd {
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("a1", "a");
        e.add_specialization("a2", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("a1").unwrap()));
        e.set_rule("a1", RSpec::Nre(Regex::parse("a2?").unwrap()));
        e.set_rule("a2", RSpec::Nre(Regex::parse("b").unwrap()));
        e
    }

    #[test]
    fn one_c_is_neither_dtd_nor_sdtd_definable() {
        let e = one_c_edtd();
        assert!(dtd_definable(&e).is_none());
        assert!(sdtd_definable(&e).is_none());
        // The candidate is the proper superset (a(b)|a(c))* with root `s`.
        let cand = dtd_candidate(&e);
        assert!(e.included_in(&cand.to_edtd()).is_ok());
        assert!(cand.accepts(&parse_term("s(a(c) a(c))").unwrap()));
        assert!(!e.accepts(&parse_term("s(a(c) a(c))").unwrap()));
    }

    #[test]
    fn depth_specialisation_is_sdtd_but_not_dtd_definable() {
        let e = depth_edtd();
        assert!(dtd_definable(&e).is_none());
        let sdtd = sdtd_definable(&e).expect("single-type by depth");
        assert!(sdtd.as_edtd().equivalent(&e));
        assert!(sdtd.accepts(&parse_term("s(a(a(b)))").unwrap()));
        assert!(!sdtd.accepts(&parse_term("s(a(b))").unwrap()));
    }

    #[test]
    fn dtd_languages_are_definable_with_equivalent_witnesses() {
        let dtd = RDtd::parse(
            RFormalism::Nre,
            "eurostat -> averages, nationalIndex*\n\
             averages -> (Good, index+)+\n\
             nationalIndex -> country, Good, (index | value, year)\n\
             index -> value, year",
        )
        .unwrap();
        let e = dtd.to_edtd();
        let d = dtd_definable(&e).expect("a DTD language is DTD-definable");
        assert!(d.equivalent(&dtd));
        let s = sdtd_definable(&e).expect("a DTD language is SDTD-definable");
        assert!(s.as_edtd().equivalent(&e));
    }

    #[test]
    fn redundant_specialisations_collapse() {
        // Two specialisations of `a` with identical content: DTD-definable.
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("x", "a");
        e.add_specialization("y", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("x y*").unwrap()));
        e.set_rule("x", RSpec::Nre(Regex::parse("b").unwrap()));
        e.set_rule("y", RSpec::Nre(Regex::parse("b").unwrap()));
        let d = dtd_definable(&e).expect("redundant specialisation");
        assert!(d.accepts(&parse_term("s(a(b) a(b))").unwrap()));
        assert!(!d.accepts(&parse_term("s").unwrap()));
    }

    #[test]
    fn empty_language_is_trivially_definable() {
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.set_rule("s", RSpec::Nre(Regex::sym("s")));
        assert!(e.language_is_empty());
        let d = dtd_definable(&e).expect("empty language");
        assert!(d.language_is_empty());
        let s = sdtd_definable(&e).expect("empty language");
        assert!(s.as_edtd().language_is_empty());
    }

    #[test]
    fn unproductive_and_unreachable_specialisations_are_ignored() {
        // `dead` is unsatisfiable, `lost` is unreachable; the live part is
        // the plain DTD s -> a*.
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("dead", "a");
        e.add_specialization("lost", "a");
        e.add_specialization("live", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("live* | dead").unwrap()));
        e.set_rule("dead", RSpec::Nre(Regex::sym("dead")));
        e.set_rule("lost", RSpec::Nre(Regex::parse("b").unwrap()));
        let d = dtd_definable(&e).expect("live part is a DTD");
        assert!(d.accepts(&parse_term("s(a a)").unwrap()));
        assert!(!d.alphabet().contains(&Symbol::new("b")));
    }
}
