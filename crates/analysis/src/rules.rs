//! Schema-level analysis passes: structural rules over [`RDtd`], [`RSdtd`]
//! and [`REdtd`], plus the definability advisories built on
//! [`crate::definability`]. See the crate docs for the table of codes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use dxml_automata::regex::Glushkov;
use dxml_automata::symbol::Word;
use dxml_automata::{dre, RSpec, Regex, Symbol};
use dxml_schema::{RDtd, REdtd, RSdtd};

use crate::cost::{suffix_counting, EXPONENTIAL_THRESHOLD};
use crate::definability::{dtd_definable, sdtd_definable};
use crate::{sort_report, Diagnostic, Severity};

/// A schema of any of the three languages, borrowed for analysis.
#[derive(Clone, Copy, Debug)]
pub enum AnySchema<'a> {
    /// An `R-DTD`.
    Dtd(&'a RDtd),
    /// An `R-SDTD`.
    Sdtd(&'a RSdtd),
    /// An `R-EDTD`.
    Edtd(&'a REdtd),
}

/// Analyzes a schema of any language, dispatching to the specific pass.
pub fn analyze_schema(schema: AnySchema<'_>) -> Vec<Diagnostic> {
    match schema {
        AnySchema::Dtd(d) => analyze_dtd(d),
        AnySchema::Sdtd(s) => analyze_sdtd(s),
        AnySchema::Edtd(e) => analyze_edtd(e),
    }
}

/// Analyzes an `R-DTD`: empty language, unreachable/unbound element names,
/// empty and non-one-unambiguous content models.
pub fn analyze_dtd(dtd: &RDtd) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if dtd.language_is_empty() {
        out.push(Diagnostic::new(
            "DX001",
            Severity::Error,
            "schema",
            format!("the schema's language is empty: start `{}` is unsatisfiable", dtd.start()),
        ));
    }
    let reachable = dtd.reachable_names();
    let bound = dtd.bound_names();
    for name in dtd.alphabet() {
        if !reachable.contains(name) {
            out.push(
                Diagnostic::new(
                    "DX002",
                    Severity::Warning,
                    format!("element `{name}`"),
                    format!("element `{name}` is unreachable from the start symbol `{}`", dtd.start()),
                )
                .with_suggestion(
                    "remove the element or reference it from a reachable content model",
                ),
            );
        }
        if !bound.contains(name) {
            out.push(
                Diagnostic::new(
                    "DX003",
                    Severity::Warning,
                    format!("element `{name}`"),
                    format!("element `{name}` is unsatisfiable: no finite tree matches it"),
                )
                .with_suggestion("break the cycle that forces the element to contain itself"),
            );
        }
    }
    for (name, spec) in dtd.rules() {
        out.extend(content_model_rules(&format!("element `{name}`"), spec));
    }
    sort_report(&mut out);
    out
}

/// Analyzes an `R-EDTD`: empty language, unreachable/unproductive
/// specialisations, empty and non-one-unambiguous content models, and the
/// SDTD-/DTD-definability advisories with the downgraded schema attached.
pub fn analyze_edtd(e: &REdtd) -> Vec<Diagnostic> {
    let mut out = structural_edtd_rules(e);
    out.extend(definability_advisories(e));
    sort_report(&mut out);
    out
}

/// Analyzes an `R-SDTD`: the structural EDTD rules plus the
/// DTD-definability advisory (an SDTD is already single-type, so `DX006`
/// cannot apply).
pub fn analyze_sdtd(s: &RSdtd) -> Vec<Diagnostic> {
    let e = s.as_edtd();
    let mut out = structural_edtd_rules(e);
    if !e.language_is_empty() && !is_plain_dtd(e) {
        if let Some(dtd) = dtd_definable(e) {
            out.push(dtd_advisory(&dtd));
        }
    }
    sort_report(&mut out);
    out
}

/// The structural rules shared by the EDTD and SDTD passes.
fn structural_edtd_rules(e: &REdtd) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if e.language_is_empty() {
        out.push(Diagnostic::new(
            "DX001",
            Severity::Error,
            "schema",
            format!("the schema's language is empty: start `{}` is unsatisfiable", e.start()),
        ));
    }
    let productive: BTreeSet<Symbol> =
        e.to_nuta().inhabited_witnesses().keys().copied().collect();
    // Reachable: top-down closure from the start through content alphabets.
    let mut reachable: BTreeSet<Symbol> = BTreeSet::from([*e.start()]);
    let mut stack = vec![*e.start()];
    while let Some(name) = stack.pop() {
        if let Some(rule) = e.rule(&name) {
            for child in rule.alphabet().iter() {
                if reachable.insert(*child) {
                    stack.push(*child);
                }
            }
        }
    }
    for name in e.specialized_names().iter() {
        let label = e.label_of(name).copied().unwrap_or(*name);
        let location = if *name == label {
            format!("element `{name}`")
        } else {
            format!("specialisation `{name}` of element `{label}`")
        };
        if !reachable.contains(name) {
            out.push(
                Diagnostic::new(
                    "DX002",
                    Severity::Warning,
                    location.clone(),
                    format!("`{name}` is unreachable from the start name `{}`", e.start()),
                )
                .with_suggestion(
                    "remove the specialisation or reference it from a reachable content model",
                ),
            );
        }
        if !productive.contains(name) {
            out.push(
                Diagnostic::new(
                    "DX003",
                    Severity::Warning,
                    location,
                    format!("`{name}` is unsatisfiable: no finite tree matches it"),
                )
                .with_suggestion("break the cycle that forces the specialisation to contain itself"),
            );
        }
    }
    for (name, spec) in e.rules() {
        out.extend(content_model_rules(&format!("specialisation `{name}`"), spec));
    }
    out
}

/// A concrete witness that an expression is not one-unambiguous: after
/// reading `word`, its final [`AmbiguityWitness::symbol`] can be matched
/// by two distinct occurrences of that symbol in the expression — exactly
/// the Brüggemann-Klein/Wood determinism violation, made tangible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AmbiguityWitness {
    /// The symbol both occurrences compete for.
    pub symbol: Symbol,
    /// The 1-based occurrence indices (reading order) of the two
    /// positions competing for [`AmbiguityWitness::symbol`].
    pub occurrences: (usize, usize),
    /// A shortest ambiguous input: reading it up to the final symbol is
    /// unambiguous, the final symbol has two possible matches.
    pub word: Word,
}

impl fmt::Display for AmbiguityWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self.word.iter().map(ToString::to_string).collect();
        write!(
            f,
            "reading `{}` is ambiguous: the final `{}` can match occurrence {} or \
             occurrence {} of `{}` in the expression",
            rendered.join(" "),
            self.symbol,
            self.occurrences.0,
            self.occurrences.1,
            self.symbol
        )
    }
}

/// Two distinct positions in `set` carrying the same symbol, if any.
fn competing_positions(g: &Glushkov, set: &BTreeSet<usize>) -> Option<(usize, usize)> {
    let mut seen: BTreeMap<Symbol, usize> = BTreeMap::new();
    for &p in set {
        match seen.get(&g.position_symbols[p]) {
            Some(&q) => return Some((q, p)),
            None => {
                seen.insert(g.position_symbols[p], p);
            }
        }
    }
    None
}

fn make_witness(g: &Glushkov, mut word: Word, p: usize, q: usize) -> AmbiguityWitness {
    let symbol = g.position_symbols[p];
    let occurrence =
        |pos: usize| g.position_symbols[1..=pos].iter().filter(|s| **s == symbol).count();
    word.push(symbol);
    AmbiguityWitness { symbol, occurrences: (occurrence(p), occurrence(q)), word }
}

/// Extracts a concrete [`AmbiguityWitness`] from a non-one-unambiguous
/// expression: a breadth-first search over the Glushkov (position)
/// automaton finds a shortest prefix reaching a position whose first/
/// follow set contains two competing occurrences of one symbol. Returns
/// `None` for deterministic expressions (and for conflicts buried in
/// unreachable positions, which cannot be exhibited by any input).
///
/// # Panics
///
/// Only on a broken internal invariant (a queued position without its
/// reaching word).
pub fn ambiguity_witness(re: &Regex) -> Option<AmbiguityWitness> {
    let g = re.glushkov();
    if let Some((p, q)) = competing_positions(&g, &g.first) {
        return Some(make_witness(&g, Vec::new(), p, q));
    }
    let mut word_to: Vec<Option<Word>> = vec![None; g.position_symbols.len()];
    let mut queue = VecDeque::new();
    for &p in &g.first {
        if word_to[p].is_none() {
            word_to[p] = Some(vec![g.position_symbols[p]]);
            queue.push_back(p);
        }
    }
    while let Some(r) = queue.pop_front() {
        let base = word_to[r].clone().expect("queued positions have words");
        if let Some((p, q)) = competing_positions(&g, &g.follow[r]) {
            return Some(make_witness(&g, base, p, q));
        }
        for &s in &g.follow[r] {
            if word_to[s].is_none() {
                let mut w = base.clone();
                w.push(g.position_symbols[s]);
                word_to[s] = Some(w);
                queue.push_back(s);
            }
        }
    }
    None
}

/// Per-content-model rules: `DX004` (empty content model), `DX005`
/// (not one-unambiguous, ambiguity witness attached) and `DX014`
/// (predicted-exponential suffix-counting shape, witness family attached).
fn content_model_rules(location: &str, spec: &RSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if spec.is_empty_language() {
        out.push(
            Diagnostic::new(
                "DX004",
                Severity::Warning,
                location.to_string(),
                "the content model accepts no child word at all (not even the empty one)",
            )
            .with_suggestion("every node with this rule is invalid; use `()` for leaf-only names"),
        );
        return out; // The dRE check is noise on an empty language.
    }
    if !spec.formalism().is_deterministic() {
        match spec {
            RSpec::Nre(re) if !dre::one_unambiguous_expr(re) => {
                let message = match ambiguity_witness(re) {
                    Some(w) => format!(
                        "the content model `{re}` is not a one-unambiguous expression: {w}"
                    ),
                    None => {
                        format!("the content model `{re}` is not a one-unambiguous expression")
                    }
                };
                let diag = Diagnostic::new("DX005", Severity::Warning, location.to_string(), message);
                out.push(match dre::smallest_equivalent_dre_hint(re) {
                    Some(hint) => diag.with_suggestion(format!(
                        "an equivalent deterministic expression exists, e.g. `{hint}`"
                    )),
                    None if !dre::one_unambiguous_regex_language(re) => diag.with_suggestion(
                        "no equivalent deterministic expression exists (BKW); \
                         W3C-DTD/XSD validators will reject this content model",
                    ),
                    None => diag,
                });
            }
            RSpec::Nfa(nfa) if !dre::one_unambiguous_language(nfa) => {
                out.push(
                    Diagnostic::new(
                        "DX005",
                        Severity::Warning,
                        location.to_string(),
                        "the content model's language is not one-unambiguous",
                    )
                    .with_suggestion(
                        "no deterministic expression captures it (BKW); \
                         W3C-DTD/XSD validators cannot express this content model",
                    ),
                );
            }
            _ => {}
        }
    }
    if let RSpec::Nre(re) | RSpec::Dre(re) = spec {
        if let Some(sc) = suffix_counting(re) {
            if sc.dfa_lower_bound >= EXPONENTIAL_THRESHOLD {
                out.push(
                    Diagnostic::new(
                        "DX014",
                        Severity::Warning,
                        location.to_string(),
                        format!(
                            "the content model `{re}` is predicted-exponential: {}",
                            sc.describe()
                        ),
                    )
                    .with_suggestion(format!(
                        "determinising this rule cannot stay below {} states; run it \
                         governed (`cost::recommend_budget` synthesises fitting quotas) \
                         or restructure the rule so membership does not depend on a \
                         fixed position from the end",
                        sc.dfa_lower_bound
                    )),
                );
            }
        }
    }
    out
}

/// Whether the EDTD is a plain DTD in EDTD clothing: every specialised name
/// is its own label, so a definability advisory would carry no information.
fn is_plain_dtd(e: &REdtd) -> bool {
    e.specialized_names().iter().all(|name| e.label_of(name) == Some(name))
}

/// The `DX006`/`DX007` advisories for an EDTD (strongest downgrade only).
pub(crate) fn definability_advisories(e: &REdtd) -> Vec<Diagnostic> {
    if e.language_is_empty() || is_plain_dtd(e) {
        return Vec::new();
    }
    if let Some(dtd) = dtd_definable(e) {
        return vec![dtd_advisory(&dtd)];
    }
    if RSdtd::from_edtd(e.clone()).is_ok() {
        // Already single-type: an SDTD advisory would carry no information.
        return Vec::new();
    }
    if let Some(sdtd) = sdtd_definable(e) {
        return vec![Diagnostic::new(
            "DX006",
            Severity::Info,
            "schema",
            "the language is SDTD-definable: an equivalent single-type schema exists, \
             enabling top-down and streaming validation (`StreamValidator`)",
        )
        .with_suggestion(format!("{}", sdtd.as_edtd()))];
    }
    Vec::new()
}

fn dtd_advisory(dtd: &RDtd) -> Diagnostic {
    Diagnostic::new(
        "DX007",
        Severity::Info,
        "schema",
        "the language is DTD-definable: an equivalent plain DTD exists, \
         enabling the local-verification fast path (`verify_local`)",
    )
    .with_suggestion(format!("{dtd}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::{RFormalism, Regex};

    fn codes(report: &[Diagnostic]) -> Vec<&'static str> {
        report.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_dtd_yields_no_diagnostics() {
        let dtd = RDtd::parse(RFormalism::Nre, "s -> a, b?\na -> b*").unwrap();
        assert!(analyze_dtd(&dtd).is_empty(), "{:?}", analyze_dtd(&dtd));
    }

    #[test]
    fn dead_and_empty_parts_are_reported() {
        let mut dtd = RDtd::parse(RFormalism::Nre, "s -> a*\na -> b?").unwrap();
        // `c` unreachable; `loop` unreachable and unbound.
        dtd.set_rule("c", RSpec::Nre(Regex::parse("b").unwrap()));
        dtd.set_rule("loop", RSpec::Nre(Regex::sym("loop")));
        let report = analyze_dtd(&dtd);
        assert!(codes(&report).contains(&"DX002"));
        assert!(codes(&report).contains(&"DX003"));
        assert!(!codes(&report).contains(&"DX001"), "language is not empty");
    }

    #[test]
    fn empty_language_is_an_error() {
        let mut dtd = RDtd::new(RFormalism::Nre, "s");
        dtd.set_rule("s", RSpec::Nre(Regex::sym("s")));
        let report = analyze_dtd(&dtd);
        assert_eq!(report[0].code, "DX001");
        assert_eq!(report[0].severity, Severity::Error);
    }

    #[test]
    fn non_deterministic_content_models_get_dx005() {
        // (a|b)* a is not one-unambiguous as written but its language is
        // (the hint helper rewrites it to (b* a)+).
        let mut dtd = RDtd::new(RFormalism::Nre, "s");
        dtd.set_rule("s", RSpec::Nre(Regex::parse("(a | b)* a").unwrap()));
        let report = analyze_dtd(&dtd);
        let dx5: Vec<_> = report.iter().filter(|d| d.code == "DX005").collect();
        assert_eq!(dx5.len(), 1);
        assert!(
            dx5[0].suggestion.as_deref().is_some_and(|s| s.contains("equivalent deterministic")),
            "{:?}",
            dx5[0].suggestion
        );
    }

    #[test]
    fn dx005_attaches_a_concrete_ambiguity_witness() {
        let mut dtd = RDtd::new(RFormalism::Nre, "s");
        dtd.set_rule("s", RSpec::Nre(Regex::parse("(a | b)* a").unwrap()));
        let report = analyze_dtd(&dtd);
        let dx5 = report.iter().find(|d| d.code == "DX005").expect("DX005 fires");
        assert!(dx5.message.contains("ambiguous"), "{}", dx5.message);
        assert!(dx5.message.contains("occurrence 1 or occurrence 2"), "{}", dx5.message);
    }

    #[test]
    fn ambiguity_witness_is_a_shortest_ambiguous_input() {
        // First-set conflict: the very first `a` already has two matches.
        let w = ambiguity_witness(&Regex::parse("(a | b)* a").unwrap()).unwrap();
        assert_eq!(w.word.len(), 1);
        assert_eq!(w.occurrences, (1, 2));
        // Follow-set conflict two letters in: `c (a | b)* a` is only
        // ambiguous after reading `c` and one window letter.
        let w = ambiguity_witness(&Regex::parse("c, (a | b)* a").unwrap()).unwrap();
        assert!(w.word.len() >= 2, "{:?}", w.word);
        // Deterministic expressions yield no witness.
        assert!(ambiguity_witness(&Regex::parse("(b* a)+").unwrap()).is_none());
        assert!(ambiguity_witness(&Regex::parse("a, b?").unwrap()).is_none());
    }

    #[test]
    fn dx014_fires_on_the_suffix_counting_family_with_the_right_bound() {
        // (a|b)* a (a|b)^{n-1} with n = 8: lower bound 2^8 = 256.
        let tail = " (a | b)".repeat(7);
        let mut dtd = RDtd::new(RFormalism::Nre, "s");
        dtd.set_rule("s", RSpec::Nre(Regex::parse(&format!("(a | b)* a{tail}")).unwrap()));
        let report = analyze_dtd(&dtd);
        let dx14 = report.iter().find(|d| d.code == "DX014").expect("DX014 fires");
        assert_eq!(dx14.severity, Severity::Warning);
        assert!(dx14.message.contains("256"), "{}", dx14.message);
        assert!(dx14.message.contains("rejects"), "witness family attached: {}", dx14.message);
        assert!(
            dx14.suggestion.as_deref().is_some_and(|s| s.contains("recommend_budget")),
            "{:?}",
            dx14.suggestion
        );
    }

    #[test]
    fn dx014_stays_silent_below_the_exponential_threshold() {
        // Window 1 → bound 2, far below the threshold: DX005 only.
        let mut dtd = RDtd::new(RFormalism::Nre, "s");
        dtd.set_rule("s", RSpec::Nre(Regex::parse("(a | b)* a").unwrap()));
        let report = analyze_dtd(&dtd);
        assert!(codes(&report).contains(&"DX005"));
        assert!(!codes(&report).contains(&"DX014"));
    }

    #[test]
    fn definability_advisory_round_trips() {
        // Redundant specialisations: DTD-definable, so DX007 fires and the
        // suggested schema is language-equivalent to the original.
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("x", "a");
        e.add_specialization("y", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("x y*").unwrap()));
        e.set_rule("x", RSpec::Nre(Regex::parse("b").unwrap()));
        e.set_rule("y", RSpec::Nre(Regex::parse("b").unwrap()));
        let report = analyze_edtd(&e);
        let advisory = report.iter().find(|d| d.code == "DX007").expect("DTD-definable");
        assert_eq!(advisory.severity, Severity::Info);
        let suggested = advisory.suggestion.as_ref().expect("schema attached");
        assert!(suggested.contains("DTD"), "{suggested}");
        assert!(dtd_definable(&e).unwrap().to_edtd().equivalent(&e));
    }

    #[test]
    fn sdtd_advisory_fires_only_for_genuinely_specialised_schemas() {
        // Depth specialisation, *written* non-single-type via a redundant
        // alternative: SDTD-definable but not DTD-definable → DX006.
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("a1", "a");
        e.add_specialization("a2", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("a1 | a1 a1", ).unwrap()));
        e.set_rule("a1", RSpec::Nre(Regex::parse("a2?").unwrap()));
        e.set_rule("a2", RSpec::Nre(Regex::parse("b").unwrap()));
        let report = analyze_edtd(&e);
        // `s`'s content uses only a1 — single-type as written, so no DX006.
        assert!(!codes(&report).contains(&"DX006"));
        // Make it non-single-type: a1 and a2 both occur under `s`.
        let mut f = e.clone();
        f.set_rule("s", RSpec::Nre(Regex::parse("a1 | a2").unwrap()));
        let report = analyze_edtd(&f);
        if let Some(advisory) = report.iter().find(|d| d.code == "DX006") {
            assert!(advisory.suggestion.is_some());
        }
        // A genuinely non-SDTD-definable language gets no advisory at all.
        let mut g = REdtd::new(RFormalism::Nre, "s", "s");
        g.add_specialization("ab", "a");
        g.add_specialization("ac", "a");
        g.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
        g.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
        g.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
        let report = analyze_edtd(&g);
        assert!(!codes(&report).contains(&"DX006"));
        assert!(!codes(&report).contains(&"DX007"));
    }

    #[test]
    fn analyze_schema_dispatches() {
        let dtd = RDtd::parse(RFormalism::Nre, "s -> a*").unwrap();
        assert!(analyze_schema(AnySchema::Dtd(&dtd)).is_empty());
        let sdtd = RSdtd::parse(RFormalism::Nre, "s -> a?").unwrap();
        assert!(analyze_schema(AnySchema::Sdtd(&sdtd)).is_empty());
        let e = dtd.to_edtd();
        assert!(analyze_schema(AnySchema::Edtd(&e)).is_empty());
    }
}
