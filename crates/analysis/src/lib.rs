//! Static analysis for distributed XML designs.
//!
//! Two layers on top of the schema and design crates:
//!
//! 1. **Decision procedures** ([`definability`]) — exact tests for the
//!    definability hierarchy of Section 3 of *Distributed XML Design*:
//!    [`dtd_definable`] (Lemma 3.12) and [`sdtd_definable`] (Lemma 3.5)
//!    decide whether the language of an [`REdtd`] can be captured by a
//!    plain [`RDtd`] or a single-type [`RSdtd`], and return the witness
//!    schema when it can.
//! 2. **Diagnostics engine** ([`rules`] and [`design`]) — an
//!    [`analyze_schema`] / [`analyze_design`] pass producing rustc-style
//!    [`Diagnostic`]s: dead schema parts, non-deterministic content models,
//!    design-level pitfalls and definability *advisories* whose suggestion
//!    is the downgraded schema (unlocking the `verify_local` /
//!    `StreamValidator` fast paths of the lower layers).
//!
//! # Diagnostic codes
//!
//! | Code    | Severity | Meaning |
//! |---------|----------|---------|
//! | `DX001` | error    | the schema's language is empty (the start name is unsatisfiable) |
//! | `DX002` | warning  | unreachable element name / specialisation (occurs in no tree of the language) |
//! | `DX003` | warning  | unproductive element name / specialisation (no finite tree satisfies it) |
//! | `DX004` | warning  | empty content model (the rule accepts no child word at all) |
//! | `DX005` | warning  | content model is not one-unambiguous (not a dRE in the W3C sense) |
//! | `DX006` | info     | the EDTD is SDTD-definable — the suggested single-type schema enables top-down/streaming validation |
//! | `DX007` | info     | the EDTD/SDTD is DTD-definable — the suggested DTD enables the `verify_local` fast path |
//! | `DX008` | error    | vacuous design: the target schema has an empty language |
//! | `DX009` | warning  | a function name shadows an element name of the target schema |
//! | `DX010` | warning  | a function has a schema but is never called by the document |
//! | `DX011` | error    | a called function has no schema (typechecking will fail) |
//! | `DX012` | warning  | a function docks under several distinct parents (box synthesis will refuse with `SynthesisUnsupported`) |
//! | `DX013` | warning  | a function schema has an empty language (every call site is unsatisfiable) |
//! | `DX014` | warning  | predicted-exponential content model: a suffix-counting shape forces `2^n` subset states (witness family attached) |
//! | `DX015` | info     | budget advisory: the recommended step/state quotas for running this design governed ([`cost::recommend_budget`]) |
//! | `DX016` | info     | the predicted cost is dominated by one named content model / docking point |
//!
//! `error`-severity diagnostics mean the schema or design cannot work as
//! written; `warning`s are latent defects; `info`s are advisories with a
//! concrete improvement attached as [`Diagnostic::suggestion`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod cost;
pub mod definability;
pub mod design;
pub mod report;
pub mod rules;

pub use cost::{
    box_design_cost, budget_from_cost, content_model_cost, design_cost, dtd_cost, edtd_cost,
    inclusion_cost, recommend_box_budget, recommend_box_budget_with_headroom, recommend_budget,
    recommend_budget_with_headroom, recommended_quotas, suffix_counting, Bounds, ContentModelCost,
    DesignCost, Dominant, InclusionCost, SchemaCost, SuffixCounting, ATTENTION_THRESHOLD,
    DEFAULT_HEADROOM, EXPONENTIAL_THRESHOLD,
};
pub use definability::{dtd_candidate, dtd_definable, sdtd_candidate, sdtd_definable};
pub use design::{analyze_box_design, analyze_design};
pub use report::{error_count, render_json, render_text};
pub use rules::{
    ambiguity_witness, analyze_dtd, analyze_edtd, analyze_schema, analyze_sdtd, AmbiguityWitness,
    AnySchema,
};

#[cfg(doc)]
use dxml_schema::{RDtd, REdtd, RSdtd};

/// How bad a [`Diagnostic`] is. The derived order ranks `Error` first, so
/// sorting a report ascending puts the most severe findings on top.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// The schema or design cannot work as written.
    Error,
    /// A latent defect: dead rules, non-deterministic content models, …
    Warning,
    /// An advisory with a concrete improvement attached.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        };
        write!(f, "{name}")
    }
}

/// One finding of the analysis passes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable code (`DX001`…), see the crate-level table.
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Where it was found, e.g. `element `a`` or `function `f``.
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// A concrete improvement, when the analysis can compute one (for the
    /// definability advisories: the downgraded schema itself).
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic without a suggestion.
    pub fn new(
        code: &'static str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            location: location.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggestion.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    /// Renders in the rustc report style:
    ///
    /// ```text
    /// warning[DX002]: element `b` is unreachable from the start symbol
    ///   --> element `b`
    ///   = help: remove the element or reference it from a reachable content model
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        write!(f, "\n  --> {}", self.location)?;
        if let Some(s) = &self.suggestion {
            for (i, line) in s.lines().enumerate() {
                if i == 0 {
                    write!(f, "\n  = help: {line}")?;
                } else {
                    write!(f, "\n          {line}")?;
                }
            }
        }
        Ok(())
    }
}

/// Sorts a report for presentation: most severe first, then by code, then
/// by location — a deterministic order independent of rule evaluation order.
pub fn sort_report(diagnostics: &mut [Diagnostic]) {
    diagnostics
        .sort_by(|a, b| (a.severity, a.code, &a.location).cmp(&(b.severity, b.code, &b.location)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Info);
    }

    #[test]
    fn display_is_rustc_style() {
        let d = Diagnostic::new("DX002", Severity::Warning, "element `b`", "element `b` is dead")
            .with_suggestion("remove it\nor reference it");
        let s = d.to_string();
        assert!(s.starts_with("warning[DX002]: element `b` is dead"), "{s}");
        assert!(s.contains("--> element `b`"), "{s}");
        assert!(s.contains("= help: remove it"), "{s}");
        assert!(s.contains("          or reference it"), "{s}");
    }

    #[test]
    fn sort_report_is_severity_then_code_then_location() {
        let mut r = vec![
            Diagnostic::new("DX010", Severity::Warning, "b", "x"),
            Diagnostic::new("DX006", Severity::Info, "a", "x"),
            Diagnostic::new("DX010", Severity::Warning, "a", "x"),
            Diagnostic::new("DX001", Severity::Error, "z", "x"),
        ];
        sort_report(&mut r);
        let order: Vec<(&str, &str)> =
            r.iter().map(|d| (d.code, d.location.as_str())).collect();
        assert_eq!(
            order,
            vec![("DX001", "z"), ("DX010", "a"), ("DX010", "b"), ("DX006", "a")]
        );
    }
}
