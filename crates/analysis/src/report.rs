//! Machine- and human-readable rendering of diagnostic reports.
//!
//! The `schema_lint` example (and any future lint front end) renders a
//! corpus of `(entry, findings)` pairs either as rustc-style text or as
//! one dependency-free JSON document:
//!
//! ```json
//! {
//!   "entries": [
//!     {"entry": "...", "diagnostics": [
//!       {"code":"DX005","severity":"warning","location":"...",
//!        "message":"...","suggestion":null}
//!     ]}
//!   ],
//!   "errors": 0
//! }
//! ```
//!
//! Field order inside each diagnostic object is fixed
//! (`code`, `severity`, `location`, `message`, `suggestion`) so the output
//! is diffable across runs; every string goes through [`json_string`], so
//! metacharacter-heavy schema names (quotes, backslashes, control
//! characters, non-ASCII) stay valid JSON.

use crate::{Diagnostic, Severity};

/// Minimal JSON string rendering: quotes, backslashes and control
/// characters escaped, everything else (including non-ASCII) passed
/// through verbatim — the same dialect as the bench harness's
/// `BENCH_*`/`TELEMETRY_*` files.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One diagnostic as a JSON object with fixed field order.
fn diagnostic_json(d: &Diagnostic) -> String {
    let suggestion = d.suggestion.as_deref().map_or_else(|| "null".to_string(), json_string);
    format!(
        r#"{{"code":{},"severity":{},"location":{},"message":{},"suggestion":{}}}"#,
        json_string(d.code),
        json_string(&d.severity.to_string()),
        json_string(&d.location),
        json_string(&d.message),
        suggestion
    )
}

/// One corpus entry's findings as a JSON object.
fn entry_json(entry: &str, report: &[Diagnostic]) -> String {
    let diags: Vec<String> =
        report.iter().map(|d| format!("      {}", diagnostic_json(d))).collect();
    let body = if diags.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n    ]", diags.join(",\n"))
    };
    format!("    {{\"entry\":{},\"diagnostics\":{}}}", json_string(entry), body)
}

/// Renders a whole corpus report as one JSON document
/// (`{"entries": [...], "errors": N}`).
pub fn render_json(entries: &[(String, Vec<Diagnostic>)]) -> String {
    let rendered: Vec<String> =
        entries.iter().map(|(entry, report)| entry_json(entry, report)).collect();
    format!(
        "{{\n  \"entries\": [\n{}\n  ],\n  \"errors\": {}\n}}",
        rendered.join(",\n"),
        error_count(entries)
    )
}

/// Renders a whole corpus report as rustc-style text, one header per
/// entry (`<entry>: clean` when it has no findings).
pub fn render_text(entries: &[(String, Vec<Diagnostic>)]) -> String {
    let mut out = String::new();
    for (entry, report) in entries {
        if report.is_empty() {
            out.push_str(entry);
            out.push_str(": clean\n");
            continue;
        }
        out.push_str(entry);
        out.push_str(":\n");
        for d in report {
            out.push_str(&d.to_string());
            out.push('\n');
        }
    }
    out
}

/// Error-severity count across all findings — the exit-code contract:
/// lint front ends exit non-zero iff this is positive.
pub fn error_count(entries: &[(String, Vec<Diagnostic>)]) -> usize {
    entries
        .iter()
        .flat_map(|(_, report)| report)
        .filter(|d| d.severity == Severity::Error)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: &'static str, severity: Severity, location: &str) -> Diagnostic {
        Diagnostic::new(code, severity, location, "msg")
    }

    #[test]
    fn json_string_escapes_metacharacters() {
        assert_eq!(json_string(r#"quote " here"#), r#""quote \" here""#);
        assert_eq!(json_string(r"back \ slash"), r#""back \\ slash""#);
        assert_eq!(json_string("ctrl\nnewline\ttab"), "\"ctrl\\u000anewline\\u0009tab\"");
        assert_eq!(json_string("élément «über»"), "\"élément «über»\"");
        assert_eq!(json_string(""), "\"\"");
    }

    #[test]
    fn diagnostic_fields_come_in_stable_order() {
        let entries = vec![(
            "entry".to_string(),
            vec![diag("DX001", Severity::Error, "element `a`").with_suggestion("fix it")],
        )];
        let json = render_json(&entries);
        let code = json.find(r#""code":"#).unwrap();
        let severity = json.find(r#""severity":"#).unwrap();
        let location = json.find(r#""location":"#).unwrap();
        let message = json.find(r#""message":"#).unwrap();
        let suggestion = json.find(r#""suggestion":"#).unwrap();
        assert!(code < severity && severity < location && location < message);
        assert!(message < suggestion, "{json}");
        assert!(json.contains(r#""suggestion":"fix it""#));
    }

    #[test]
    fn null_suggestion_is_json_null() {
        let entries =
            vec![("e".to_string(), vec![diag("DX002", Severity::Warning, "element `a`")])];
        assert!(render_json(&entries).contains(r#""suggestion":null"#));
    }

    #[test]
    fn metacharacter_heavy_entry_names_stay_valid_json() {
        // A schema named with quotes, backslashes and non-ASCII must not
        // break the document structure: every quote inside a string is
        // escaped, so the raw quote count of the document stays even and
        // the brace structure survives a naive scan.
        let entries = vec![(
            "schema \"x\\y\" (日本語)".to_string(),
            vec![diag("DX005", Severity::Warning, "element `\"q\"`")
                .with_suggestion("rename \\ it")],
        )];
        let json = render_json(&entries);
        let unescaped_quotes = json
            .as_bytes()
            .iter()
            .enumerate()
            .filter(|&(i, &b)| b == b'"' && (i == 0 || json.as_bytes()[i - 1] != b'\\'))
            .count();
        assert_eq!(unescaped_quotes % 2, 0, "{json}");
        assert!(json.contains(r#"schema \"x\\y\" (日本語)"#), "{json}");
    }

    #[test]
    fn error_count_matches_the_exit_contract() {
        let entries = vec![
            ("a".to_string(), vec![diag("DX001", Severity::Error, "schema")]),
            (
                "b".to_string(),
                vec![
                    diag("DX002", Severity::Warning, "element `x`"),
                    diag("DX008", Severity::Error, "schema"),
                ],
            ),
            ("c".to_string(), Vec::new()),
        ];
        assert_eq!(error_count(&entries), 2);
        let json = render_json(&entries);
        assert!(json.ends_with("\"errors\": 2\n}"), "{json}");
        let text = render_text(&entries);
        assert!(text.contains("c: clean"));
        assert!(text.contains("error[DX001]"));
    }
}
