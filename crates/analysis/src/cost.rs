//! Static cost analysis: predict determinisation blowup and synthesise
//! budgets **before** running anything.
//!
//! PR 9's `*_with_budget` entry points let a caller bound every
//! worst-case-exponential loop, but picking the quota values required
//! running the schema and tripping. This module closes that loop
//! statically: from the structural [`NfaMetrics`] of each content model it
//! brackets — without determinising anything — the exact telemetry
//! counters the engine would report (`dfa.subset_states`,
//! `dfa.subset_transitions`, `equiv.bfs_states`, `equiv.bfs_transitions`),
//! detects suffix-counting shapes like `(a|b)* a (a|b)^{n-1}` that force a
//! `2^n` DFA lower bound, and composes the per-model brackets into a
//! design-level [`DesignCost`] from which [`recommend_budget`] synthesises
//! concrete step/state quotas with a headroom factor.
//!
//! # The bracket invariant
//!
//! Every [`Bounds`] value in this module is a *sound* bracket of a
//! telemetry counter: `lower ≤ actual ≤ upper` for the counter it names.
//! The calibration suite (`crates/bench/tests/cost_calibration.rs`)
//! asserts this differentially against the live PR 8 counters on the full
//! bench corpus, and the `cost_analysis` bench target gates it in CI. The
//! load-bearing facts, matching `Dfa::from_nfa_with_budget` and
//! `equiv::included_with_budget` exactly:
//!
//! * the subset construction materialises only **non-empty** subsets of
//!   the `m` NFA states, so it builds at most `2^m − 1` subset states —
//!   and it scans the NFA's registered alphabet once per popped subset, so
//!   `dfa.subset_transitions = dfa.subset_states × |alphabet|` exactly;
//! * the subsets visited along a shortest accepted word's run are pairwise
//!   distinct (collapsing two of them would pump the word shorter), so a
//!   non-empty language forces at least `min_word_len + 1` subset states;
//! * a suffix-counting model `S* a T_1 … T_k` with `{a, b} ⊆ T_i` for
//!   some filler `b ∈ S \ {a}` forces `2^{k+1}` subset states: the
//!   `2^{k+1}` prefixes in `{a,b}^{k+1}` lead to pairwise distinct,
//!   non-empty subsets (two prefixes differing at window offset `i` are
//!   separated by the extension `b^{k-i}`);
//! * the inclusion BFS over the completed product pops each reachable
//!   pair at most once, so a run over DFAs with `s_a`/`s_b` states pops at
//!   most `(s_a + 1) × (s_b + 1)` pairs (completion adds one sink per
//!   side) and scans the union alphabet once per fully expanded pop; when
//!   the inclusion *holds* it exhausts every reachable pair, so the pairs
//!   along either side's shortest word force `max(minlen_a, minlen_b) + 1`
//!   pops and `pops × |Σ_a ∪ Σ_b|` edge scans exactly.
//!
//! # What is calibrated and what is coarse
//!
//! The subset-construction and product-BFS brackets above are tight and
//! differentially calibrated. The residual-walk and box-fixpoint terms of
//! [`DesignCost`] are *coarse structural* bounds (sound but loose); they
//! exist so the synthesised step quota covers every governed loop of a
//! `verify_local`/`typecheck`/`perfect_schema` run, and they ride inside
//! the headroom factor rather than the calibrated core.
//!
//! # Budget synthesis
//!
//! [`recommend_budget`] (and [`recommend_box_budget`]) turn a
//! [`DesignCost`] into a [`Budget`]: with a positive headroom factor `h`
//! the quotas are `upper × h + BASE_SLACK` (admission control — every
//! well-behaved schema fits, a predicted-exponential one is surfaced by
//! `DX014`/`DX015` instead of an OOM); with headroom `0` the quotas are
//! `lower − 1`, *guaranteed* to trip on any covering run — the shape the
//! fuzz smoke-test uses to prove the predictions have teeth.

use std::fmt;

use dxml_automata::symbol::Word;
use dxml_automata::{Alphabet, Budget, Nfa, NfaMetrics, RSpec, Regex, Symbol};
use dxml_core::{BoxDesignProblem, DesignProblem};
use dxml_schema::{RDtd, REdtd};

/// Suffix-counting lower bounds at or above this many predicted subset
/// states raise `DX014` (predicted-exponential content model).
pub const EXPONENTIAL_THRESHOLD: u64 = 64;

/// Designs whose predicted upper state bound reaches this raise the
/// `DX015` budget advisory (and `DX016` when one location dominates).
pub const ATTENTION_THRESHOLD: u64 = 1 << 16;

/// Default headroom factor of [`recommend_budget`]: quotas are twice the
/// predicted upper bound (plus [`BASE_SLACK`]).
pub const DEFAULT_HEADROOM: f64 = 2.0;

/// Flat additive slack of every positive-headroom quota, covering the
/// per-node costs (fresh realizable-language determinisations, BFS pops)
/// that scale with the *document* rather than the schema.
pub const BASE_SLACK: u64 = 1 << 12;

/// A sound bracket `lower ≤ actual ≤ upper` of one cost counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bounds {
    /// Guaranteed minimum of the counter.
    pub lower: u64,
    /// Guaranteed maximum of the counter (saturating; `u64::MAX` means
    /// "astronomical", not "unknown" — the bound is still sound).
    pub upper: u64,
}

impl Bounds {
    /// A bracket that pins the counter exactly.
    pub fn exact(v: u64) -> Bounds {
        Bounds { lower: v, upper: v }
    }

    /// A bracket from both ends.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` — a violated bracket is a bug in the
    /// model, never a recoverable condition.
    pub fn new(lower: u64, upper: u64) -> Bounds {
        assert!(lower <= upper, "inverted bounds: {lower} > {upper}");
        Bounds { lower, upper }
    }

    /// Whether `actual` falls inside the bracket.
    pub fn contains(&self, actual: u64) -> bool {
        self.lower <= actual && actual <= self.upper
    }

    /// Component-wise saturating sum (brackets of independent counters
    /// add).
    pub fn plus(self, other: Bounds) -> Bounds {
        Bounds {
            lower: self.lower.saturating_add(other.lower),
            upper: self.upper.saturating_add(other.upper),
        }
    }

    /// Component-wise saturating scaling by a constant factor.
    pub fn times(self, k: u64) -> Bounds {
        Bounds { lower: self.lower.saturating_mul(k), upper: self.upper.saturating_mul(k) }
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lower == self.upper {
            write!(f, "{}", self.lower)
        } else if self.upper == u64::MAX {
            write!(f, "[{} … 2^64)", self.lower)
        } else {
            write!(f, "[{} … {}]", self.lower, self.upper)
        }
    }
}

/// `2^m − 1` with saturation: the number of non-empty subsets of `m` NFA
/// states, i.e. the hard ceiling of the subset construction.
pub fn pow2_minus1(m: usize) -> u64 {
    if m >= 64 {
        u64::MAX
    } else {
        (1u64 << m) - 1
    }
}

fn pow2(m: usize) -> u64 {
    if m >= 64 {
        u64::MAX
    } else {
        1u64 << m
    }
}

// ---------------------------------------------------------------------
// Suffix-counting detection
// ---------------------------------------------------------------------

/// A detected suffix-counting shape `S* a T_1 … T_k` — the canonical
/// exponential-determinisation family of the form `(a|b)* a (a|b)^{n-1}`
/// — together with the witness data backing its lower bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuffixCounting {
    /// The pivot symbol `a` whose position from the end the language
    /// counts.
    pub pivot: Symbol,
    /// A filler symbol `b ∈ S \ {a}` allowed at every window offset.
    pub filler: Symbol,
    /// The window width `k + 1`: membership of `pivot`-vs-`filler` words
    /// is decided by the letter exactly `window` positions from the end.
    pub window: u32,
    /// `2^window` (saturating): a lower bound on the states of *any* DFA
    /// for the language, hence on `dfa.subset_states`.
    pub dfa_lower_bound: u64,
    /// A shortest accepted member of the witness family:
    /// `pivot filler^{window-1}`.
    pub accepted: Word,
    /// The matching rejected word `filler^window` — same length, differs
    /// only at the window position.
    pub rejected: Word,
}

impl SuffixCounting {
    /// One-sentence human rendering of the witness, used by `DX014`.
    pub fn describe(&self) -> String {
        format!(
            "membership is decided by the letter {} position(s) from the end \
             (accepts `{}`, rejects `{}`), so any DFA must remember the last \
             {} letters: at least {} subset states",
            self.window,
            render_word(&self.accepted),
            render_word(&self.rejected),
            self.window,
            self.dfa_lower_bound,
        )
    }
}

fn render_word(w: &Word) -> String {
    let parts: Vec<String> = w.iter().map(ToString::to_string).collect();
    parts.join(" ")
}

/// Flattens nested top-level concatenations into a factor list.
fn flatten_concat(re: &Regex) -> Vec<&Regex> {
    fn go<'a>(re: &'a Regex, out: &mut Vec<&'a Regex>) {
        match re {
            Regex::Concat(vs) => {
                for v in vs {
                    go(v, out);
                }
            }
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    go(re, &mut out);
    out
}

/// The symbol set of a width-1 factor (a symbol or an alternation of
/// symbols — every word it accepts has length exactly 1), or `None`.
fn unit_symbols(re: &Regex) -> Option<Alphabet> {
    match re {
        Regex::Sym(s) => {
            let mut a = Alphabet::new();
            a.insert(*s);
            Some(a)
        }
        Regex::Alt(vs) => {
            let mut out = Alphabet::new();
            for v in vs {
                out = out.union(&unit_symbols(v)?);
            }
            Some(out)
        }
        _ => None,
    }
}

/// Detects the suffix-counting shape `S* a T_1 … T_k` in an expression:
/// a leading star over a width-1 alternation `S` with `|S| ≥ 2`, a pivot
/// `a ∈ S`, and a width-1 tail where some filler `b ∈ S \ {a}` satisfies
/// `{a, b} ⊆ T_i` for every tail factor.
///
/// Under those conditions `L ∩ {a,b}*` is exactly the words of length
/// `≥ k+1` whose letter `k+1` positions from the end is `a`, which is the
/// textbook `2^{k+1}`-state fooling family — the returned
/// [`SuffixCounting::dfa_lower_bound`] is a *proved* lower bound on the
/// subset-construction state count, not a heuristic. `(a|b)* a (a|b)^{n-1}`
/// yields `window = n` and bound `2^n`.
pub fn suffix_counting(re: &Regex) -> Option<SuffixCounting> {
    let parts = flatten_concat(re);
    if parts.len() < 2 {
        return None;
    }
    let body = match parts[0] {
        Regex::Star(body) => unit_symbols(body)?,
        _ => return None,
    };
    if body.len() < 2 {
        return None;
    }
    let pivot = match parts[1] {
        Regex::Sym(s) if body.contains(s) => *s,
        _ => return None,
    };
    let tails: Vec<Alphabet> = parts[2..].iter().map(|p| unit_symbols(p)).collect::<Option<_>>()?;
    if !tails.iter().all(|t| t.contains(&pivot)) {
        return None;
    }
    let filler =
        *body.iter().find(|b| **b != pivot && tails.iter().all(|t| t.contains(b)))?;
    let k = tails.len();
    let window = u32::try_from(k + 1).ok()?;
    let mut accepted = vec![pivot];
    accepted.extend(std::iter::repeat(filler).take(k));
    let rejected = vec![filler; k + 1];
    Some(SuffixCounting {
        pivot,
        filler,
        window,
        dfa_lower_bound: pow2(k + 1),
        accepted,
        rejected,
    })
}

// ---------------------------------------------------------------------
// Per-content-model cost
// ---------------------------------------------------------------------

/// The predicted determinisation cost of one content model.
#[derive(Clone, Debug)]
pub struct ContentModelCost {
    /// The structural metrics of the model's NFA (Thompson for `nRE`,
    /// as-is for `nFA`/`dFA`).
    pub metrics: NfaMetrics,
    /// Star nesting depth of the expression (`Plus` counts as an orbit);
    /// `None` for automaton-backed models.
    pub star_height: Option<usize>,
    /// Bracket of `dfa.subset_states` for determinising this model.
    pub subset_states: Bounds,
    /// Bracket of `dfa.subset_transitions`; exactly
    /// `subset_states × |alphabet|` on both ends.
    pub subset_steps: Bounds,
    /// The detected exponential shape, if any.
    pub suffix_counting: Option<SuffixCounting>,
}

/// Star nesting depth; `Plus` is an orbit, `Opt` is not.
fn star_height(re: &Regex) -> usize {
    match re {
        Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 0,
        Regex::Concat(vs) | Regex::Alt(vs) => vs.iter().map(star_height).max().unwrap_or(0),
        Regex::Star(b) | Regex::Plus(b) => 1 + star_height(b),
        Regex::Opt(b) => star_height(b),
    }
}

/// Brackets the subset-construction cost of a content model from its
/// structure alone. See the module docs for the exact counter semantics
/// each bound tracks.
pub fn content_model_cost(spec: &RSpec) -> ContentModelCost {
    let nfa = spec.to_nfa();
    let metrics = nfa.metrics();
    let (height, suffix) = match spec {
        RSpec::Nre(re) | RSpec::Dre(re) => (Some(star_height(re)), suffix_counting(re)),
        RSpec::Nfa(_) | RSpec::Dfa(_) => (None, None),
    };
    let mut lower = match metrics.min_word_len {
        Some(len) => (len as u64).saturating_add(1),
        None => 1, // the start closure alone
    };
    if let Some(sc) = &suffix {
        lower = lower.max(sc.dfa_lower_bound);
    }
    let mut upper = pow2_minus1(metrics.states);
    if matches!(spec, RSpec::Dfa(_)) {
        // Determinising a DFA only ever visits singleton subsets.
        upper = upper.min(metrics.states as u64);
    }
    let subset_states = Bounds::new(lower, upper.max(lower));
    let subset_steps = subset_states.times(metrics.alphabet.len() as u64);
    ContentModelCost { metrics, star_height: height, subset_states, subset_steps, suffix_counting: suffix }
}

// ---------------------------------------------------------------------
// Inclusion (product-BFS) cost
// ---------------------------------------------------------------------

/// The predicted cost of one `included(a, b)` language-inclusion check:
/// determinise both sides, complete them over the union alphabet, BFS the
/// product.
#[derive(Clone, Debug)]
pub struct InclusionCost {
    /// Bracket of the `dfa.subset_states` the check adds (both sides).
    pub subset_states: Bounds,
    /// Bracket of the `dfa.subset_transitions` the check adds.
    pub subset_steps: Bounds,
    /// Bracket of `equiv.bfs_states` (pairs popped) with no assumption on
    /// the verdict — a counterexample on the start pair can stop the BFS
    /// after a single pop.
    pub bfs_states: Bounds,
    /// Bracket of `equiv.bfs_transitions` with no assumption on the
    /// verdict.
    pub bfs_steps: Bounds,
    /// Bracket of `equiv.bfs_states` when the inclusion *holds*: the BFS
    /// exhausts every reachable pair, so the pairs along either side's
    /// shortest accepted word are all popped.
    pub bfs_states_if_included: Bounds,
    /// Bracket of `equiv.bfs_transitions` when the inclusion holds —
    /// exactly `pairs popped × |Σ_a ∪ Σ_b|` on both ends.
    pub bfs_steps_if_included: Bounds,
}

/// Brackets an `included(a, b)` run from the two NFAs' structure.
pub fn inclusion_cost(a: &Nfa, b: &Nfa) -> InclusionCost {
    let ma = a.metrics();
    let mb = b.metrics();
    let sa = content_nfa_states(&ma);
    let sb = content_nfa_states(&mb);
    let width = ma.alphabet.union(&mb.alphabet).len() as u64;
    // Completion adds at most one sink state per side.
    let pairs_upper = sa.upper.saturating_add(1).saturating_mul(sb.upper.saturating_add(1));
    let pairs_lower_included = ma
        .min_word_len
        .into_iter()
        .chain(mb.min_word_len)
        .max()
        .map_or(1, |len| (len as u64).saturating_add(1));
    let subset_states = sa.plus(sb);
    let subset_steps = sa
        .times(ma.alphabet.len() as u64)
        .plus(sb.times(mb.alphabet.len() as u64));
    let included_states = Bounds::new(pairs_lower_included.min(pairs_upper), pairs_upper);
    InclusionCost {
        subset_states,
        subset_steps,
        bfs_states: Bounds::new(1, pairs_upper),
        bfs_steps: Bounds::new(0, pairs_upper.saturating_mul(width)),
        bfs_states_if_included: included_states,
        bfs_steps_if_included: included_states.times(width),
    }
}

/// Subset-state bracket from bare metrics (shared by the two sides of
/// [`inclusion_cost`]; same maths as [`content_model_cost`]).
fn content_nfa_states(m: &NfaMetrics) -> Bounds {
    let lower = match m.min_word_len {
        Some(len) => (len as u64).saturating_add(1),
        None => 1,
    };
    let upper = pow2_minus1(m.states).max(lower);
    Bounds::new(lower, upper)
}

// ---------------------------------------------------------------------
// Schema- and design-level composition
// ---------------------------------------------------------------------

/// The summed determinisation cost of one schema's content models.
#[derive(Clone, Debug)]
pub struct SchemaCost {
    /// Per-rule costs with human-readable locations (`element `a`` /
    /// `specialisation `x``), in rule order.
    pub rules: Vec<(String, ContentModelCost)>,
    /// Bracket of the total `dfa.subset_states` of determinising every
    /// content model once (the memoised cold path).
    pub subset_states: Bounds,
    /// Bracket of the matching total `dfa.subset_transitions`.
    pub subset_steps: Bounds,
}

impl SchemaCost {
    fn from_rules(rules: Vec<(String, ContentModelCost)>) -> SchemaCost {
        let mut subset_states = Bounds::exact(0);
        let mut subset_steps = Bounds::exact(0);
        for (_, cost) in &rules {
            subset_states = subset_states.plus(cost.subset_states);
            subset_steps = subset_steps.plus(cost.subset_steps);
        }
        SchemaCost { rules, subset_states, subset_steps }
    }

    /// The rules whose detected suffix-counting lower bound crosses
    /// [`EXPONENTIAL_THRESHOLD`] — the `DX014` set.
    pub fn exponential(&self) -> impl Iterator<Item = (&str, &SuffixCounting)> {
        self.rules.iter().filter_map(|(loc, cost)| {
            cost.suffix_counting
                .as_ref()
                .filter(|sc| sc.dfa_lower_bound >= EXPONENTIAL_THRESHOLD)
                .map(|sc| (loc.as_str(), sc))
        })
    }
}

/// Brackets the content-model determinisation cost of an `R-DTD`.
pub fn dtd_cost(dtd: &RDtd) -> SchemaCost {
    SchemaCost::from_rules(
        dtd.rules()
            .map(|(name, spec)| (format!("element `{name}`"), content_model_cost(spec)))
            .collect(),
    )
}

/// Brackets the content-model determinisation cost of an `R-EDTD`.
pub fn edtd_cost(e: &REdtd) -> SchemaCost {
    SchemaCost::from_rules(
        e.rules()
            .map(|(name, spec)| (format!("specialisation `{name}`"), content_model_cost(spec)))
            .collect(),
    )
}

/// The location whose predicted upper bound dominates a design's total.
#[derive(Clone, Debug)]
pub struct Dominant {
    /// The dominating content model's location (diagnostic style).
    pub location: String,
    /// Its predicted upper state bound.
    pub upper: u64,
    /// The design's total predicted upper state bound.
    pub total_upper: u64,
}

/// The composed cost model of a whole design problem: what a cold
/// `verify_local`/`typecheck` run would charge against a [`Budget`].
#[derive(Clone, Debug)]
pub struct DesignCost {
    /// The target schema's per-rule costs.
    pub target: SchemaCost,
    /// Each function schema's costs, keyed `schema of function `f``.
    pub functions: Vec<(String, SchemaCost)>,
    /// Bracket of the determinised tree-target (`Duta`) state count —
    /// subsets of the one-state-per-specialised-name `Nuta`.
    pub duta_states: Bounds,
    /// Bracket of the total states a covering cold run grows. The lower
    /// end counts only the *guaranteed* work — one memoised
    /// determinisation per target rule — so a state quota of
    /// `states.lower − 1` provably trips on any document exercising every
    /// rule.
    pub states: Bounds,
    /// Bracket of the total governed steps (subset scans, BFS edge scans,
    /// residual walks) a covering cold run charges.
    pub steps: Bounds,
    /// Bracket of `equiv.bfs_states` per local-check inclusion, under the
    /// self-inclusion approximation of the realizable language (coarse —
    /// reported, not calibrated at design level).
    pub bfs_states: Bounds,
    /// Matching bracket of `equiv.bfs_transitions` (coarse).
    pub bfs_steps: Bounds,
    /// Coarse bracket of the universal-residual walk steps of a
    /// `perfect_schema` run: each walk scans at most the determinised
    /// states times the union alphabet.
    pub residual_steps: Bounds,
    /// Coarse bracket of the Section-7 per-function `D`-fixpoint
    /// iterations (exactly 0 for DTD-target designs; each Kleene round
    /// on a box design grows a monotone set over the specialised names).
    pub fixpoint_iters: Bounds,
    /// The dominating location, when one content model accounts for at
    /// least half of the design's predicted upper state bound.
    pub dominant: Option<Dominant>,
}

impl DesignCost {
    fn compose(
        target: SchemaCost,
        functions: Vec<(String, SchemaCost)>,
        nuta_states: usize,
        fixpoint_iters: Bounds,
    ) -> DesignCost {
        let duta_states = Bounds::new(1, pow2_minus1(nuta_states).max(1));
        // Guaranteed floor: each target rule's content DFA is memoised and
        // built once a node with that label is checked, so a covering
        // document forces at least the per-rule lowers. Function-schema
        // and duta states also count against the same budget but are not
        // part of the floor (their exercise depends on the document).
        let states_lower = target.subset_states.lower.max(1);
        let mut states_upper = duta_states
            .upper
            .saturating_add(target.subset_states.upper);
        let steps_lower = target.subset_steps.lower;
        let mut steps_upper = target
            .subset_steps
            .upper
            // Coarse duta-determinisation step term: per subset state one
            // scan over the label alphabet.
            .saturating_add(duta_states.upper.saturating_mul(nuta_states as u64 + 1));
        let mut bfs_states = Bounds::exact(0);
        let mut bfs_steps = Bounds::exact(0);
        for (_, cost) in &target.rules {
            let width = cost.metrics.alphabet.len() as u64;
            let pairs = cost
                .subset_states
                .upper
                .saturating_add(1)
                .saturating_mul(cost.subset_states.upper.saturating_add(1));
            bfs_states = bfs_states.plus(Bounds::new(0, pairs));
            bfs_steps = bfs_steps.plus(Bounds::new(0, pairs.saturating_mul(width)));
        }
        for (_, schema) in &functions {
            states_upper = states_upper.saturating_add(schema.subset_states.upper);
            steps_upper = steps_upper.saturating_add(schema.subset_steps.upper);
        }
        steps_upper = steps_upper.saturating_add(bfs_steps.upper);
        let residual_steps = Bounds::new(0, states_upper.saturating_mul(nuta_states as u64 + 1));
        steps_upper = steps_upper.saturating_add(residual_steps.upper);
        let states = Bounds::new(states_lower, states_upper.max(states_lower));
        let steps = Bounds::new(steps_lower, steps_upper.max(steps_lower));
        let dominant = {
            let all = target
                .rules
                .iter()
                .map(|(loc, c)| (loc.clone(), c.subset_states.upper))
                .chain(functions.iter().flat_map(|(f, schema)| {
                    schema
                        .rules
                        .iter()
                        .map(move |(loc, c)| (format!("{f}: {loc}"), c.subset_states.upper))
                }));
            let mut total: u64 = 0;
            let mut top: Option<(String, u64)> = None;
            for (loc, upper) in all {
                total = total.saturating_add(upper);
                if top.as_ref().map_or(true, |(_, best)| upper > *best) {
                    top = Some((loc, upper));
                }
            }
            top.filter(|(_, upper)| total > 0 && *upper >= total.div_ceil(2))
                .map(|(location, upper)| Dominant { location, upper, total_upper: total })
        };
        DesignCost {
            target,
            functions,
            duta_states,
            states,
            steps,
            bfs_states,
            bfs_steps,
            residual_steps,
            fixpoint_iters,
            dominant,
        }
    }
}

/// Composes the design-level cost model of a DTD-target design problem.
pub fn design_cost(problem: &DesignProblem) -> DesignCost {
    let target = dtd_cost(problem.doc_schema());
    let functions: Vec<(String, SchemaCost)> = problem
        .fun_schemas()
        .iter()
        .map(|(f, schema)| (format!("schema of function `{f}`"), dtd_cost(schema)))
        .collect();
    let nuta_states = problem.doc_schema().alphabet().len();
    DesignCost::compose(target, functions, nuta_states, Bounds::exact(0))
}

/// Composes the design-level cost model of a box (R-EDTD-target) design
/// problem, including the Section-7 fixpoint term.
pub fn box_design_cost(problem: &BoxDesignProblem) -> DesignCost {
    let target = edtd_cost(problem.doc_schema());
    let functions: Vec<(String, SchemaCost)> = problem
        .fun_schemas()
        .iter()
        .map(|(f, schema)| (format!("schema of function `{f}`"), edtd_cost(schema)))
        .collect();
    let spec_names = problem.doc_schema().specialized_names().len();
    let n_funs = functions.len() as u64;
    let fixpoint = Bounds::new(
        n_funs.min(1),
        n_funs.saturating_mul(spec_names as u64 + 1).max(n_funs.min(1)),
    );
    DesignCost::compose(target, functions, spec_names, fixpoint)
}

// ---------------------------------------------------------------------
// Budget synthesis
// ---------------------------------------------------------------------

fn scale(v: u64, headroom: f64) -> u64 {
    if v == u64::MAX {
        return u64::MAX;
    }
    let x = (v as f64) * headroom;
    if x >= u64::MAX as f64 {
        u64::MAX
    } else {
        x as u64
    }
}

/// One quota from one bracket: `upper × headroom + BASE_SLACK` for
/// positive headroom (admission), `lower − 1` for headroom `≤ 0`
/// (guaranteed trip on a covering run).
fn quota(b: Bounds, headroom: f64) -> u64 {
    if headroom <= 0.0 {
        b.lower.saturating_sub(1)
    } else {
        scale(b.upper, headroom).saturating_add(BASE_SLACK)
    }
}

/// The `(state quota, step quota)` pair [`budget_from_cost`] would
/// install — exposed separately so the `DX015` advisory can print the
/// numbers it recommends.
pub fn recommended_quotas(cost: &DesignCost, headroom: f64) -> (u64, u64) {
    (quota(cost.states, headroom), quota(cost.steps, headroom))
}

/// Turns a composed [`DesignCost`] into a concrete [`Budget`] with
/// step/state quotas. Shared by the DTD and box routes.
pub fn budget_from_cost(cost: &DesignCost, headroom: f64) -> Budget {
    let (states, steps) = recommended_quotas(cost, headroom);
    Budget::unlimited().with_state_quota(states).with_step_quota(steps)
}

/// Recommends a [`Budget`] admitting this design with
/// [`DEFAULT_HEADROOM`]: every run the cost model covers fits, and a
/// schema that *cannot* fit is better surfaced by `DX014`/`DX015` than by
/// an unbounded determinisation.
pub fn recommend_budget(problem: &DesignProblem) -> Budget {
    recommend_budget_with_headroom(problem, DEFAULT_HEADROOM)
}

/// [`recommend_budget`] with an explicit headroom factor. Headroom `≤ 0`
/// synthesises the *trip* budget (`lower − 1` quotas), the shape the
/// fuzz smoke-test uses to prove predictions bind.
pub fn recommend_budget_with_headroom(problem: &DesignProblem, headroom: f64) -> Budget {
    budget_from_cost(&design_cost(problem), headroom)
}

/// Box-problem analogue of [`recommend_budget`].
pub fn recommend_box_budget(problem: &BoxDesignProblem) -> Budget {
    recommend_box_budget_with_headroom(problem, DEFAULT_HEADROOM)
}

/// Box-problem analogue of [`recommend_budget_with_headroom`].
pub fn recommend_box_budget_with_headroom(problem: &BoxDesignProblem, headroom: f64) -> Budget {
    budget_from_cost(&box_design_cost(problem), headroom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::{Dfa, RFormalism};

    fn re(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    #[test]
    fn bounds_arithmetic_saturates() {
        let b = Bounds::new(2, 5);
        assert!(b.contains(2) && b.contains(5) && !b.contains(6));
        assert_eq!(b.plus(Bounds::exact(1)), Bounds::new(3, 6));
        assert_eq!(Bounds::new(1, u64::MAX).plus(b).upper, u64::MAX);
        assert_eq!(b.times(3), Bounds::new(6, 15));
        assert_eq!(format!("{}", Bounds::exact(4)), "4");
        assert_eq!(format!("{}", Bounds::new(2, 8)), "[2 … 8]");
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn inverted_bounds_panic() {
        let _ = Bounds::new(3, 2);
    }

    #[test]
    fn pow2_minus1_saturates() {
        assert_eq!(pow2_minus1(0), 0);
        assert_eq!(pow2_minus1(3), 7);
        assert_eq!(pow2_minus1(63), (1u64 << 63) - 1);
        assert_eq!(pow2_minus1(64), u64::MAX);
        assert_eq!(pow2_minus1(200), u64::MAX);
    }

    #[test]
    fn suffix_counting_detects_the_canonical_family() {
        for n in 1..=8usize {
            let tail = " (a | b)".repeat(n - 1);
            let sc = suffix_counting(&re(&format!("(a | b)* a{tail}"))).unwrap();
            assert_eq!(sc.window as usize, n);
            assert_eq!(sc.dfa_lower_bound, 1u64 << n);
            assert_eq!(sc.accepted.len(), n);
            assert_eq!(sc.rejected.len(), n);
            // The witnesses really are decided the way the bound claims.
            let family = re(&format!("(a | b)* a{tail}"));
            assert!(family.accepts(&sc.accepted), "n={n}");
            assert!(!family.accepts(&sc.rejected), "n={n}");
        }
    }

    #[test]
    fn suffix_counting_survives_wider_windows() {
        // Tail letters may range over more than {pivot, filler}.
        let sc = suffix_counting(&re("(a | b | c)* a (a | b | c)")).unwrap();
        assert_eq!(sc.dfa_lower_bound, 4);
        // But a tail slot missing the pivot or every filler breaks the
        // window argument, so detection must refuse.
        assert!(suffix_counting(&re("(a | b)* a b")).is_none());
        assert!(suffix_counting(&re("(a | b)* a c")).is_none());
    }

    #[test]
    fn suffix_counting_rejects_benign_shapes() {
        assert!(suffix_counting(&re("b* a")).is_none(), "star body too narrow");
        assert!(suffix_counting(&re("(a | b)+ a")).is_none(), "plus is not star");
        assert!(suffix_counting(&re("(a b)* a")).is_none(), "body not width 1");
        assert!(suffix_counting(&re("(a | b)* c")).is_none(), "pivot outside body");
        assert!(suffix_counting(&re("a (a | b)*")).is_none(), "star not leading");
        assert!(suffix_counting(&re("(a | b)*")).is_none(), "no pivot");
    }

    #[test]
    fn content_model_bounds_bracket_the_real_subset_construction() {
        for expr in ["a, b?", "(b* a)+", "(a | b)* a", "(a | b)* a (a | b) (a | b)", "ε", "∅"] {
            let spec = RSpec::Nre(re(expr));
            let cost = content_model_cost(&spec);
            let dfa = Dfa::from_nfa(&spec.to_nfa());
            let actual = dfa.num_states() as u64;
            assert!(
                cost.subset_states.contains(actual),
                "{expr}: actual {actual} outside {}",
                cost.subset_states
            );
            assert_eq!(
                cost.subset_steps,
                cost.subset_states.times(cost.metrics.alphabet.len() as u64),
            );
        }
    }

    #[test]
    fn deterministic_specs_get_linear_uppers() {
        let dfa = Dfa::from_nfa(&re("(b* a)+").to_nfa());
        let n = dfa.num_states() as u64;
        let cost = content_model_cost(&RSpec::Dfa(dfa));
        assert!(cost.subset_states.upper <= n, "{} > {n}", cost.subset_states.upper);
        assert!(cost.star_height.is_none());
    }

    #[test]
    fn star_height_counts_orbits() {
        assert_eq!(star_height(&re("a, b?")), 0);
        assert_eq!(star_height(&re("(b* a)+")), 2);
        assert_eq!(star_height(&re("(a | b)* a")), 1);
    }

    #[test]
    fn inclusion_cost_brackets_are_coherent() {
        let a = re("(a | b)* a").to_nfa();
        let cost = inclusion_cost(&a, &a);
        assert!(cost.bfs_states.lower <= cost.bfs_states_if_included.lower);
        assert!(cost.bfs_states_if_included.lower >= 2, "minlen 1 forces 2 pops");
        assert!(cost.bfs_states_if_included.upper <= cost.bfs_states.upper.saturating_add(1));
        assert_eq!(
            cost.bfs_steps_if_included.upper,
            cost.bfs_states_if_included.upper.saturating_mul(2),
        );
    }

    #[test]
    fn design_cost_floors_on_the_target_rules() {
        let dtd = RDtd::parse(RFormalism::Nre, "s -> a, b?\na -> b*").unwrap();
        let problem = DesignProblem::new(dtd);
        let cost = design_cost(&problem);
        assert!(cost.states.lower >= 2, "two non-empty rules force ≥ 2 states each");
        assert!(cost.states.lower <= cost.states.upper);
        assert!(cost.steps.lower <= cost.steps.upper);
        assert_eq!(cost.fixpoint_iters, Bounds::exact(0));
    }

    #[test]
    fn dominant_location_is_flagged() {
        let mut dtd = RDtd::parse(RFormalism::Nre, "s -> a?").unwrap();
        dtd.set_rule(
            "a",
            RSpec::Nre(re("(a | b)* a (a | b) (a | b) (a | b) (a | b) (a | b)")),
        );
        let cost = design_cost(&DesignProblem::new(dtd));
        let dom = cost.dominant.expect("the adversarial rule dominates");
        assert!(dom.location.contains("element `a`"), "{}", dom.location);
        assert!(dom.upper * 2 >= dom.total_upper);
    }

    #[test]
    fn budgets_trip_at_zero_headroom_and_admit_with_headroom() {
        let dtd = RDtd::parse(RFormalism::Nre, "s -> a, b?\na -> b*").unwrap();
        let problem = DesignProblem::new(dtd);
        let cost = design_cost(&problem);
        let trip = budget_from_cost(&cost, 0.0);
        let admit = budget_from_cost(&cost, DEFAULT_HEADROOM);
        // The trip budget's state quota sits strictly below the floor;
        // the admission quota sits above the upper bound.
        assert!(trip.grow_states(cost.states.lower).is_err());
        assert!(admit.grow_states(cost.states.upper).is_ok());
    }
}
