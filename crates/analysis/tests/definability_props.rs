//! Differential property suite: the closure-based decision procedures
//! [`dtd_definable`] / [`sdtd_definable`] against brute-force
//! closure-violation search on enumerated small-tree universes.
//!
//! Lemma 3.12 characterises DTD-definable languages as those closed under
//! *label-guided* subtree exchange (swap subtrees rooted at equally
//! labelled nodes of two valid trees); Lemma 3.5's single-type analogue is
//! closure under *ancestor-guided* exchange (equal root-to-node label
//! paths). The brute force enumerates every tree up to a node budget,
//! collects the valid ones and searches for an exchange that falls out of
//! the language.
//!
//! On the curated corpus the minimal violations fit inside the enumeration
//! budget, so the brute force is *complete* there and the suite asserts
//! exact agreement. On the seeded random corpus it asserts the two
//! soundness directions: a definable verdict implies an equivalent witness
//! schema and no violation; a non-definable verdict implies the candidate
//! schema strictly grew.

use dxml_analysis::{dtd_candidate, dtd_definable, sdtd_candidate, sdtd_definable};
use dxml_automata::{RFormalism, RSpec, Regex, Symbol};
use dxml_schema::REdtd;
use dxml_tree::generate::SplitRng;
use dxml_tree::{Nuta, XTree};

// ----------------------------------------------------------------------
// Brute force
// ----------------------------------------------------------------------

/// Every tree over `labels` with at most `max_nodes` nodes.
fn all_trees(labels: &[Symbol], max_nodes: usize) -> Vec<XTree> {
    // by_size[k]: all trees with exactly k nodes.
    let mut by_size: Vec<Vec<XTree>> = vec![Vec::new(); max_nodes + 1];
    for k in 1..=max_nodes {
        let forests = all_forests(&by_size, k - 1);
        for &label in labels {
            for forest in &forests {
                by_size[k].push(XTree::node(label, forest.clone()));
            }
        }
    }
    by_size.concat()
}

/// Every forest (ordered sequence of trees) with exactly `total` nodes.
fn all_forests(by_size: &[Vec<XTree>], total: usize) -> Vec<Vec<XTree>> {
    if total == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for first in 1..=total {
        for tree in &by_size[first] {
            for rest in all_forests(by_size, total - first) {
                let mut forest = Vec::with_capacity(rest.len() + 1);
                forest.push(tree.clone());
                forest.extend(rest);
                out.push(forest);
            }
        }
    }
    out
}

/// The sorted label universe of an EDTD.
fn label_universe(e: &REdtd) -> Vec<Symbol> {
    e.labels().iter().copied().collect()
}

/// Searches valid-tree pairs for a guided subtree exchange leaving the
/// language. `guard` receives the two trees and one node of each and says
/// whether the exchange is allowed by the closure property under test.
fn find_violation(
    nuta: &Nuta,
    trees: &[XTree],
    guard: impl Fn(&XTree, usize, &XTree, usize) -> bool,
) -> Option<XTree> {
    let valid: Vec<&XTree> = trees.iter().filter(|t| nuta.accepts(t)).collect();
    for t1 in &valid {
        for t2 in &valid {
            for x1 in t1.document_order() {
                for x2 in t2.document_order() {
                    if !guard(t1, x1, t2, x2) {
                        continue;
                    }
                    let swapped = t1.with_subtree_replaced(x1, &t2.subtree(x2));
                    if !nuta.accepts(&swapped) {
                        return Some(swapped);
                    }
                }
            }
        }
    }
    None
}

/// A violation of closure under label-guided exchange (Lemma 3.12) within
/// the `max_nodes` tree universe — a certificate of non-DTD-definability.
fn dtd_violation(e: &REdtd, max_nodes: usize) -> Option<XTree> {
    let nuta = e.to_nuta();
    let trees = all_trees(&label_universe(e), max_nodes);
    find_violation(&nuta, &trees, |t1, x1, t2, x2| t1.label(x1) == t2.label(x2))
}

/// A violation of closure under ancestor-guided exchange within the
/// `max_nodes` tree universe — a certificate of non-SDTD-definability.
fn sdtd_violation(e: &REdtd, max_nodes: usize) -> Option<XTree> {
    let nuta = e.to_nuta();
    let trees = all_trees(&label_universe(e), max_nodes);
    find_violation(&nuta, &trees, |t1, x1, t2, x2| t1.anc_str(x1) == t2.anc_str(x2))
}

// ----------------------------------------------------------------------
// Curated corpus (brute force is complete within the budget)
// ----------------------------------------------------------------------

/// The classic witness `s(a(b)* a(c) a(b)*)` from `edtd.rs`/`core/boxes.rs`.
fn one_c_edtd() -> REdtd {
    let mut e = REdtd::new(RFormalism::Nre, "s", "s");
    e.add_specialization("ab", "a");
    e.add_specialization("ac", "a");
    e.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
    e.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
    e.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
    e
}

/// Depth-guided specialisation: SDTD-definable, not DTD-definable.
fn depth_edtd() -> REdtd {
    let mut e = REdtd::new(RFormalism::Nre, "s", "s");
    e.add_specialization("a1", "a");
    e.add_specialization("a2", "a");
    e.set_rule("s", RSpec::Nre(Regex::parse("a1").unwrap()));
    e.set_rule("a1", RSpec::Nre(Regex::parse("a2?").unwrap()));
    e.set_rule("a2", RSpec::Nre(Regex::parse("b").unwrap()));
    e
}

/// Position-guided with unbounded mixing: definable in both classes.
fn mixed_edtd() -> REdtd {
    let mut e = REdtd::new(RFormalism::Nre, "s", "s");
    e.add_specialization("ab", "a");
    e.add_specialization("ac", "a");
    e.set_rule("s", RSpec::Nre(Regex::parse("(ab | ac)*").unwrap()));
    e.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
    e.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
    e
}

/// Asserts exact agreement of both procedures with the brute force, and
/// that every definable verdict round-trips through an equivalent witness.
fn assert_agreement(e: &REdtd, max_nodes: usize, context: &str) {
    let dtd = dtd_definable(e);
    match dtd_violation(e, max_nodes) {
        Some(witness) => assert!(
            dtd.is_none(),
            "{context}: brute force found the label-guided violation {witness:?} \
             but dtd_definable returned a schema"
        ),
        None => {
            let dtd = dtd.unwrap_or_else(|| {
                panic!(
                    "{context}: no label-guided violation within {max_nodes} nodes \
                     but dtd_definable returned None"
                )
            });
            assert!(dtd.to_edtd().equivalent(e), "{context}: DTD witness not equivalent");
        }
    }
    let sdtd = sdtd_definable(e);
    match sdtd_violation(e, max_nodes) {
        Some(witness) => assert!(
            sdtd.is_none(),
            "{context}: brute force found the ancestor-guided violation {witness:?} \
             but sdtd_definable returned a schema"
        ),
        None => {
            let sdtd = sdtd.unwrap_or_else(|| {
                panic!(
                    "{context}: no ancestor-guided violation within {max_nodes} nodes \
                     but sdtd_definable returned None"
                )
            });
            assert!(sdtd.as_edtd().equivalent(e), "{context}: SDTD witness not equivalent");
        }
    }
}

#[test]
fn one_c_witness_agrees_with_brute_force() {
    // The minimal violations (s(a(b) a(c)) vs s(a(c))) fit in 5 nodes.
    let e = one_c_edtd();
    assert!(dtd_violation(&e, 5).is_some());
    assert!(sdtd_violation(&e, 5).is_some());
    assert_agreement(&e, 5, "one_c");
}

#[test]
fn depth_specialisation_agrees_with_brute_force() {
    let e = depth_edtd();
    assert!(dtd_violation(&e, 4).is_some());
    assert!(sdtd_violation(&e, 4).is_none());
    assert_agreement(&e, 4, "depth");
}

#[test]
fn mixed_specialisations_agree_with_brute_force() {
    assert_agreement(&mixed_edtd(), 4, "mixed");
}

#[test]
fn plain_dtd_languages_agree_with_brute_force() {
    for (i, rules) in
        ["s -> a*", "s -> a, b?", "s -> a | b\na -> b*", "s -> a+\na -> a?"].iter().enumerate()
    {
        let dtd = dxml_schema::RDtd::parse(RFormalism::Nre, rules).unwrap();
        assert_agreement(&dtd.to_edtd(), 4, &format!("dtd[{i}]"));
    }
}

#[test]
fn renamed_dtd_specialisations_agree_with_brute_force() {
    // A DTD written with gratuitously renamed specialisations.
    let mut e = REdtd::new(RFormalism::Nre, "root", "s");
    e.add_specialization("root", "s");
    e.add_specialization("child", "a");
    e.set_rule("root", RSpec::Nre(Regex::parse("child*").unwrap()));
    e.set_rule("child", RSpec::Nre(Regex::parse("b?").unwrap()));
    assert_agreement(&e, 4, "renamed");
}

#[test]
fn empty_language_agrees_with_brute_force() {
    let mut e = REdtd::new(RFormalism::Nre, "s", "s");
    e.set_rule("s", RSpec::Nre(Regex::sym("s")));
    assert_agreement(&e, 4, "empty");
}

// ----------------------------------------------------------------------
// Seeded random corpus (soundness directions)
// ----------------------------------------------------------------------

/// A small random regex over `letters` (deterministic given the rng).
fn random_regex(rng: &mut SplitRng, letters: &[Symbol]) -> Regex {
    let x = Regex::sym(*rng.pick(letters));
    let y = Regex::sym(*rng.pick(letters));
    match rng.below(6) {
        0 => x.star(),
        1 => x.opt(),
        2 => Regex::concat(vec![x, y.star()]),
        3 => Regex::alt(vec![x, y]),
        4 => Regex::concat(vec![x, y.opt()]),
        _ => x,
    }
}

/// A random EDTD over labels `{s, a, b}` with up to three specialisations
/// of `a` (contents over `b`-leaves, possibly overlapping or identical).
fn random_edtd(rng: &mut SplitRng) -> REdtd {
    let mut e = REdtd::new(RFormalism::Nre, "s", "s");
    let b = Symbol::new("b");
    let count = 1 + rng.below(3);
    let specs: Vec<Symbol> = (0..count).map(|i| Symbol::new("a").specialize(i)).collect();
    for spec in &specs {
        e.add_specialization(*spec, "a");
        e.set_rule(*spec, RSpec::Nre(random_regex(rng, &[b])));
    }
    e.set_rule("s", RSpec::Nre(random_regex(rng, &specs)));
    e
}

#[test]
fn random_corpus_soundness() {
    let mut rng = SplitRng::new(0x5EED_DEF1);
    for case in 0..40 {
        let e = random_edtd(&mut rng);
        let context = format!("random[{case}] {e}");
        match dtd_definable(&e) {
            Some(dtd) => {
                assert!(dtd.to_edtd().equivalent(&e), "{context}: DTD witness not equivalent");
                assert!(
                    dtd_violation(&e, 4).is_none(),
                    "{context}: definable but a label-guided violation exists"
                );
            }
            None => {
                // The candidate is the closure: it must have strictly grown.
                let cand = dtd_candidate(&e).to_edtd();
                assert!(e.included_in(&cand).is_ok(), "{context}: candidate lost trees");
                assert!(!cand.equivalent(&e), "{context}: candidate equal yet verdict None");
            }
        }
        match sdtd_definable(&e) {
            Some(sdtd) => {
                assert!(sdtd.as_edtd().equivalent(&e), "{context}: SDTD witness not equivalent");
                assert!(
                    sdtd_violation(&e, 4).is_none(),
                    "{context}: definable but an ancestor-guided violation exists"
                );
            }
            None => {
                let cand = sdtd_candidate(&e).to_edtd();
                assert!(e.included_in(&cand).is_ok(), "{context}: candidate lost trees");
                assert!(!cand.equivalent(&e), "{context}: candidate equal yet verdict None");
            }
        }
    }
}

#[test]
fn definability_is_monotone_across_the_hierarchy() {
    // DTD-definable ⊒ SDTD-definable on every corpus schema: whenever the
    // DTD procedure succeeds the SDTD one must too.
    let mut rng = SplitRng::new(0xA11_CE5);
    let mut corpus: Vec<REdtd> = vec![one_c_edtd(), depth_edtd(), mixed_edtd()];
    corpus.extend((0..20).map(|_| random_edtd(&mut rng)));
    for (i, e) in corpus.iter().enumerate() {
        if dtd_definable(e).is_some() {
            assert!(
                sdtd_definable(e).is_some(),
                "corpus[{i}]: DTD-definable but not SDTD-definable: {e}"
            );
        }
    }
}
